//! Distributed STARQL window execution, proven by a **differential
//! oracle**: for every continuous query — a fixed suite plus the
//! property-based generator in `tests/common` — the *output stream* of
//! distributed ticks (windows compiled to plan fragments, scattered over a
//! stream-partitioned federation, stream-key semi-joins pushed when the
//! safety analysis admits them) must be identical to single-node ticks at
//! 1, 2, 4 and 8 workers: same window ids, same satisfied bindings, same
//! CONSTRUCT triples at every pulse instant.
//!
//! Alongside the oracle, the suite pins down that the machinery actually
//! engages: windows ship as fragments over partitioned streams, a
//! FILTER-narrowed stream-static join pushes its key list into the window
//! fragment (`semi_joins_pushed > 0`) and prunes stream shards
//! (`shards_pruned > 0`), restriction-unsafe formulas fall back to
//! unrestricted scatter without changing answers, shared windows are
//! shipped once across queries, and stream writes re-partition the pools.

mod common;

use common::proptest_cases;
use common::streaming::{self, StreamingCase};
use optique_rdf::Triple;
use optique_starql::TickOutput;
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Pulse instants the oracle ticks over (the generated streams live in
/// `600s..612s`; one extra tick past the end covers empty trailing
/// windows).
fn tick_instants() -> impl Iterator<Item = i64> {
    (600_000..=613_000).step_by(1_000)
}

fn canon_triples(triples: &[Triple]) -> Vec<String> {
    let mut out: Vec<String> = triples.iter().map(|t| format!("{t:?}")).collect();
    out.sort();
    out
}

/// The comparable slice of one tick: everything that defines the output
/// stream. Shipping accounting (`tuples_in_window`, `states`,
/// `stream_rows_shipped`, …) legitimately differs between backends — a
/// restricted window evaluates fewer tuples — and is asserted separately.
fn output_stream(tick: &TickOutput) -> (u64, usize, usize, Vec<String>) {
    (
        tick.window_id,
        tick.satisfied,
        tick.bindings_checked,
        canon_triples(&tick.triples),
    )
}

/// Asserts single-node ≡ distributed output streams for one program over
/// one stream, at every worker count.
fn assert_streaming_equivalent(case: &StreamingCase) {
    let single = streaming::deployment(case.rows.clone());
    single
        .register_starql(&case.text)
        .unwrap_or_else(|e| panic!("single-node registration failed for\n{}\n{e}", case.text));
    let reference: Vec<(u64, usize, usize, Vec<String>)> = tick_instants()
        .map(|t| output_stream(&single.tick_all(t).unwrap()[0].1))
        .collect();

    for workers in WORKER_COUNTS {
        let distributed = streaming::deployment(case.rows.clone());
        distributed
            .register_starql_distributed(&case.text, workers)
            .unwrap_or_else(|e| {
                panic!(
                    "{workers}-worker registration failed for\n{}\n{e}",
                    case.text
                )
            });
        for (instant, expected) in tick_instants().zip(&reference) {
            let outputs = distributed.tick_all(instant).unwrap_or_else(|e| {
                panic!(
                    "{workers}-worker tick {instant} failed for\n{}\n{e}",
                    case.text
                )
            });
            assert_eq!(
                &output_stream(&outputs[0].1),
                expected,
                "{workers}-worker tick {instant} diverged for\n{}",
                case.text
            );
        }
    }
}

// Tests live in a module named after the suite so a bare
// `cargo test streaming_equivalence` filter selects them all.
mod streaming_equivalence {
    use super::*;

    /// Handwritten programs: the Figure 1 macro, thresholds, failure
    /// events, FILTER-narrowed joins, UNION WHERE clauses, and both
    /// restriction-unsafe shapes (negation, HAVING-local subject).
    #[test]
    fn fixed_suite_is_equivalent() {
        let rows = streaming::ramp_stream();
        for shape in 0..7 {
            let case = StreamingCase {
                text: streaming::program(shape, 10, 1, true, 3),
                rows: rows.clone(),
            };
            assert_streaming_equivalent(&case);
        }
        // A tumbling window (slide == range) and a no-pulse grid.
        assert_streaming_equivalent(&StreamingCase {
            text: streaming::program(1, 2, 2, false, 12),
            rows: rows.clone(),
        });
        // An empty stream: every window is empty everywhere.
        assert_streaming_equivalent(&StreamingCase {
            text: streaming::program(2, 5, 1, true, 0),
            rows: Vec::new(),
        });
    }

    /// The acceptance case: a stream-static join whose FILTER narrows the
    /// monitored sensors to a couple of keys. The window fragment carries
    /// the key list as a semi-join (`semi_joins_pushed > 0`) and key
    /// routing skips the stream shards that cannot hold those keys
    /// (`shards_pruned > 0`) — while the alarms match single-node exactly.
    #[test]
    fn narrowed_join_pushes_keys_and_prunes_stream_shards() {
        let text = streaming::program(3, 10, 1, true, 1); // FILTER(?n < 2)
        let case = StreamingCase {
            text: text.clone(),
            rows: streaming::ramp_stream(),
        };
        assert_streaming_equivalent(&case);

        let p = streaming::deployment(case.rows.clone());
        p.register_starql_distributed(&text, 8).unwrap();
        let outputs = p.tick_all(609_000).unwrap();
        let tick = &outputs[0].1;
        assert_eq!(tick.bindings_checked, 2, "serials 0 and 1 pass the FILTER");
        assert_eq!(tick.window_fragments, 1, "the window shipped as a fragment");
        assert!(
            tick.semi_joins_pushed > 0,
            "the key list rode the fragment: {tick:?}"
        );
        assert!(
            tick.shards_pruned > 0,
            "2 keys over 8 stream shards must skip some: {tick:?}"
        );
        assert!(
            tick.stream_rows_shipped < streaming::ramp_stream().len(),
            "restriction ships a subset: {tick:?}"
        );
        // The panels surface the same story.
        let dash = p.dashboard();
        assert!(dash.panels[0].semi_joins_pushed > 0);
        assert!(dash.total_stream_shards_pruned() > 0);
    }

    /// Restriction-unsafe formulas (negation) still scatter over the
    /// stream shards — just unrestricted: every worker slices its shard of
    /// the full window.
    #[test]
    fn unsafe_formula_scatters_unrestricted() {
        let text = streaming::program(5, 5, 1, true, 0); // NOT EXISTS …
        let p = streaming::deployment(streaming::ramp_stream());
        p.register_starql_distributed(&text, 4).unwrap();
        let outputs = p.tick_all(605_000).unwrap();
        let tick = &outputs[0].1;
        assert_eq!(tick.semi_joins_pushed, 0, "no key list: {tick:?}");
        assert_eq!(tick.window_fragments, 1);
        assert_eq!(
            tick.partitioned_fragments, 1,
            "the window scattered over the stream shards: {tick:?}"
        );
        assert_eq!(
            tick.stream_rows_shipped, tick.tuples_in_window,
            "scatter ships each window row exactly once, not per worker"
        );
    }

    /// Two distributed queries with the same window spec share one shipped
    /// window through the cache: the second query's tick ships nothing.
    #[test]
    fn shared_windows_ship_once() {
        let text = streaming::program(5, 10, 1, true, 0);
        let p = streaming::deployment(streaming::ramp_stream());
        p.register_starql_distributed(&text, 4).unwrap();
        p.register_starql_distributed(&text, 4).unwrap();
        let outputs = p.tick_all(606_000).unwrap();
        let shipped: Vec<usize> = outputs.iter().map(|(_, t)| t.window_fragments).collect();
        assert_eq!(shipped.iter().sum::<usize>(), 1, "one fragment for both");
        assert!(p.wcache().hits() >= 1);
    }

    /// A stream write lands in later windows on both backends: pools
    /// re-partition the appended stream and ticks stay equivalent.
    #[test]
    fn stream_writes_repartition_and_stay_equivalent() {
        let text = streaming::program(2, 5, 1, true, 0); // failure events
        let rows = streaming::ramp_stream();
        let single = streaming::deployment(rows.clone());
        let distributed = streaming::deployment(rows);
        single.register_starql(&text).unwrap();
        distributed.register_starql_distributed(&text, 4).unwrap();

        let appended: Vec<Vec<optique_relational::Value>> = (0..streaming::STREAM_SENSORS)
            .map(|s| streaming::msmt(614_000, s, 50.0, true))
            .collect();
        single.insert_static("S_Msmt", appended.clone()).unwrap();
        distributed.insert_static("S_Msmt", appended).unwrap();

        for instant in [614_000, 615_000] {
            let s = output_stream(&single.tick_all(instant).unwrap()[0].1);
            let d = output_stream(&distributed.tick_all(instant).unwrap()[0].1);
            assert_eq!(s, d, "post-write tick {instant}");
        }
        // The planted failures actually fire after the write.
        let last = single.tick_all(616_000).unwrap()[0].1.clone();
        assert!(last.window_id > 0);
    }

    /// Repeated ticks of the same distributed query hit the worker plan
    /// caches once the same window wire recurs across worker counts of
    /// rounds — and the per-tick fragments land on the dashboard.
    #[test]
    fn tick_rounds_populate_worker_plan_caches() {
        let text = streaming::program(1, 5, 1, true, 7);
        let p = streaming::deployment(streaming::ramp_stream());
        p.register_starql_distributed(&text, 4).unwrap();
        for instant in tick_instants() {
            p.tick_all(instant).unwrap();
        }
        let dash = p.dashboard();
        assert!(dash.panels[0].window_fragments > 1);
        assert!(dash.panels[0].stream_rows > 0);
        assert!(
            dash.plan_cache_misses > 0,
            "window wires parsed at least once: {dash:?}"
        );
    }

    // ---- generated suite -----------------------------------------------

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(proptest_cases(12)))]

        /// Generated programs over generated streams: distributed ticks
        /// (1/2/4/8 workers) reproduce single-node output streams exactly.
        #[test]
        fn generated_programs_are_equivalent(case in streaming::case_strategy()) {
            assert_streaming_equivalent(&case);
        }
    }
}
