//! Static SPARQL queries over the Siemens deployment.
//!
//! Demonstrates the paper's one-time-query half: `Platform::query_static`
//! answers SPARQL against the relational sources via PerfectRef rewriting
//! and mapping unfolding — no RDF materialization, no triple store.
//!
//! ```sh
//! cargo run --example static_sparql
//! ```

use optique::OptiquePlatform;
use optique_siemens::SiemensDeployment;

fn main() {
    let platform = OptiquePlatform::from_siemens(SiemensDeployment::small());

    println!("== gas turbines with models, located anywhere ==");
    let turbines = platform
        .query_static(
            "SELECT ?t ?m ?c WHERE { \
               ?t a sie:GasTurbine ; sie:hasModel ?m . \
               OPTIONAL { ?t sie:locatedIn ?c } \
               FILTER(REGEX(?m, \"^SGT\")) \
             } ORDER BY ?m LIMIT 8",
        )
        .expect("valid query");
    print!("{}", turbines.render(8));

    println!("\n== sensors per assembly (top 5) ==");
    let per_assembly = platform
        .query_static(
            "SELECT ?a (COUNT(DISTINCT ?s) AS ?n) WHERE { ?a sie:inAssembly ?s } \
             GROUP BY ?a ORDER BY DESC(?n) LIMIT 5",
        )
        .expect("valid query");
    print!("{}", per_assembly.render(5));

    println!("\n== reachability through the taxonomy (no direct mapping) ==");
    let appliances = platform
        .query_static("SELECT DISTINCT ?x WHERE { ?x a sie:PowerGeneratingAppliance }")
        .expect("valid query");
    println!("PowerGeneratingAppliance instances: {}", appliances.len());

    println!("\n== ASK ==");
    let ask = platform
        .query_static("ASK { ?s a sie:TemperatureSensor }")
        .expect("valid query");
    print!("{}", ask.render(1));

    println!("\n== federated over 4 ExaStream workers (same answers) ==");
    let distributed = platform
        .query_static_distributed("SELECT DISTINCT ?s WHERE { ?s a sie:MonitoringDevice }", 4)
        .expect("valid query");
    println!(
        "MonitoringDevice instances (4 workers): {}",
        distributed.len()
    );

    println!("\n== repeated query → per-BGP cache hit ==");
    let _ = platform
        .query_static("SELECT DISTINCT ?s WHERE { ?s a sie:MonitoringDevice }")
        .expect("valid query");
    let cache = platform.bgp_cache();
    println!(
        "BGP cache: {} hits / {} misses",
        cache.hits(),
        cache.misses()
    );

    println!("\n== dashboard with per-query pipeline counters ==");
    print!("{}", platform.dashboard().render());
}
