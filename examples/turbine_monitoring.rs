//! Demo scenario S1 — diagnostics with a preconfigured deployment: register
//! tasks from the Siemens catalog, monitor continuous answers on the
//! dashboard (paper Figures 1 and 3).
//!
//! ```text
//! cargo run --example turbine_monitoring [n_tasks]
//! ```

use optique::OptiquePlatform;
use optique_siemens::catalog::TaskQuery;
use optique_siemens::{diagnostic_tasks, SiemensDeployment};

fn main() {
    let n_tasks: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);

    let deployment = SiemensDeployment::small();
    let start = deployment.stream_config.start_ms;
    let end = start + deployment.stream_config.duration_ms;
    let truth = deployment.ground_truth.clone();
    let platform = OptiquePlatform::from_siemens(deployment);

    println!("== registering up to {n_tasks} catalog tasks ==");
    let mut registered = 0;
    for task in diagnostic_tasks() {
        if registered >= n_tasks {
            break;
        }
        match &task.query {
            TaskQuery::StarQl(_) => {
                let id = platform.register_task(&task).expect("task registers");
                println!("  {} [{}] → query #{id}", task.id, task.name);
                registered += 1;
            }
            TaskQuery::SqlPlus(sql) => {
                println!("  {} [{}] runs as a SQL(+) dataflow:", task.id, task.name);
                let t = optique_relational::exec::query(sql, &platform.db()).expect("runs");
                print!("{}", t.render(4));
            }
        }
    }

    println!("\n== ground truth planted by the generator ==");
    for (s, ts) in &truth.ramp_failures {
        println!("  monotonic ramp → failure on sensor {s} at {ts} ms");
    }
    for (s, ts) in &truth.hot_bursts {
        println!("  hot burst on sensor {s} from {ts} ms");
    }

    println!("\n== replaying the stream ({start}..{end} ms) ==");
    for tick in (start..=end).step_by(5_000) {
        let outputs = platform.tick_all(tick).expect("tick");
        let fired: usize = outputs.iter().map(|(_, o)| o.satisfied).sum();
        if fired > 0 {
            for (id, out) in &outputs {
                for triple in &out.triples {
                    println!("  [{tick} ms] query #{id}: {triple}");
                }
            }
        }
    }

    println!("\n== final dashboard frame ==");
    print!("{}", platform.dashboard().render());
}
