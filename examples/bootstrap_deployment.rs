//! Demo scenario S3 — deploy OPTIQUE over the Siemens data by bootstrapping
//! ontologies and mappings with BootOX, inspect them, and query the fresh
//! deployment.
//!
//! ```text
//! cargo run --example bootstrap_deployment
//! ```

use optique_bootstrap::{
    align, bootstrap_direct, discover_by_keywords, discover_foreign_keys, BootstrapSettings,
};
use optique_rdf::Iri;
use optique_rewrite::{Atom, ConjunctiveQuery, QueryTerm};
use optique_siemens::{fleet::fleet_schema, SiemensDeployment};

fn main() {
    let deployment = SiemensDeployment::small();
    let schema = fleet_schema();
    let settings = BootstrapSettings {
        vocab_ns: "http://boot.example/vocab#".into(),
        data_ns: "http://boot.example/data/".into(),
        mandatory_participation: true,
    };

    println!("== 1. direct-mapping bootstrap over the fleet schema ==");
    let out = bootstrap_direct(&schema, &settings).expect("bootstrap succeeds");
    println!(
        "  {:?} → {} classes, {} axioms, {} mappings (skipped: {})",
        out.elapsed,
        out.class_count(),
        out.ontology.axiom_count(),
        out.mappings.len(),
        out.skipped.len()
    );
    for assertion in out.mappings.assertions().iter().take(5) {
        println!("  mapping: {assertion}");
    }

    println!("\n== 2. implicit FK discovery from the data ==");
    let mut bare = schema.clone();
    for table in &mut bare.tables {
        table.foreign_keys.clear();
    }
    for (table, fk) in discover_foreign_keys(&bare, &deployment.db, &Default::default()) {
        println!(
            "  {table}.{} → {}.{}",
            fk.columns[0], fk.ref_table, fk.ref_columns[0]
        );
    }

    println!("\n== 3. keyword-driven mapping discovery ({{SGT, gas, germany}}) ==");
    for candidate in discover_by_keywords(&schema, &deployment.db, &["SGT", "gas", "germany"])
        .into_iter()
        .take(3)
    {
        println!("  score {:.2}: {}", candidate.score, candidate.sql);
        for (kw, at) in &candidate.matches {
            println!("    {kw} matched {at}");
        }
    }

    println!("\n== 4. aligning the bootstrapped ontology with the curated one ==");
    let curated = optique_siemens::ontology::siemens_ontology();
    let result = align(&curated, &out.ontology);
    println!(
        "  {} lexical matches, {} bridges accepted, {} rejected",
        result.matches.len(),
        result.accepted.len(),
        result.rejected.len()
    );
    for (axiom, reason) in result.rejected.iter().take(3) {
        println!("  rejected {axiom}: {reason}");
    }

    println!("\n== 5. querying the bootstrapped deployment ==");
    let q = ConjunctiveQuery::new(
        vec!["t".into()],
        vec![Atom::class(
            Iri::new("http://boot.example/vocab#Turbine"),
            QueryTerm::var("t"),
        )],
    );
    let (sql, stats) =
        optique_mapping::unfold_cq(&q, &out.mappings, &Default::default()).expect("unfolds");
    let sql = sql.expect("Turbine is mapped");
    println!("  unfolded SQL: {sql}");
    println!(
        "  ({} combination(s), {} emitted)",
        stats.combinations, stats.emitted
    );
    let table = optique_relational::exec::query(&sql.to_string(), &deployment.db).expect("runs");
    println!(
        "  {} turbines via the bootstrapped semantic layer",
        table.len()
    );
}
