//! Demo scenario S2 — performance showcase: throughput while scaling worker
//! nodes and concurrent diagnostic tasks (the paper's "up to 128 nodes",
//! "more than a thousand concurrent tasks" claims, experiments E1/E2).
//!
//! ```text
//! cargo run --release --example fleet_scaling [max_nodes] [max_queries]
//! ```

use std::sync::Arc;
use std::time::Instant;

use optique_exastream::cluster::{hash_partition, Cluster};
use optique_exastream::gateway::Gateway;
use optique_exastream::metrics::format_rate;
use optique_relational::Database;
use optique_siemens::{FleetConfig, StreamConfig};

fn build_source() -> (Database, usize) {
    let mut db = Database::new();
    let sensors = optique_siemens::fleet::build_fleet(
        &mut db,
        &FleetConfig {
            turbines: 50,
            assemblies_per_turbine: 4,
            sensors_per_assembly: 5,
            seed: 9,
        },
    )
    .unwrap();
    let config = StreamConfig {
        sensor_ids: sensors,
        start_ms: 0,
        duration_ms: 120_000,
        period_ms: 1_000,
        seed: 9,
        ramp_failures: 5,
        correlated_pairs: 3,
        hot_bursts: 3,
    };
    optique_siemens::streamgen::build_stream(&mut db, &config).unwrap();
    let tuples = db.table("S_Msmt").unwrap().len();
    (db, tuples)
}

fn cluster_for(db: &Database, workers: usize) -> Arc<Cluster> {
    let stream = (**db.table("S_Msmt").unwrap()).clone();
    let shards = hash_partition(&stream, 1, workers);
    Arc::new(Cluster::provision(workers, |id| {
        let mut wdb = Database::new();
        wdb.put_table("S_Msmt", shards[id].clone());
        optique_stream::register_stream_functions(&mut wdb);
        wdb
    }))
}

const QUERY: &str = "SELECT sensor_id, COUNT(*) AS n, AVG(value) AS mean, MAX(value) AS mx \
     FROM S_Msmt GROUP BY sensor_id";

fn main() {
    let max_nodes: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(128);
    let max_queries: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1024);

    let (db, tuples) = build_source();
    println!("source stream: {tuples} tuples\n");

    // E1: node sweep.
    println!("== E1: throughput vs nodes (one full-stream aggregation per worker shard) ==");
    println!("{:>6} {:>14} {:>16}", "nodes", "elapsed", "throughput");
    let mut nodes = 1;
    while nodes <= max_nodes {
        let cluster = cluster_for(&db, nodes);
        let start = Instant::now();
        let reps = 5;
        for _ in 0..reps {
            cluster.parallel_query(QUERY).unwrap();
        }
        let elapsed = start.elapsed() / reps;
        let rate = tuples as f64 / elapsed.as_secs_f64();
        println!("{:>6} {:>14?} {:>16}", nodes, elapsed, format_rate(rate));
        nodes *= 2;
    }

    // E2: concurrent-task sweep on a fixed cluster.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    println!("\n== E2: aggregate throughput vs concurrent tasks ({workers} workers) ==");
    println!("{:>8} {:>14} {:>16}", "queries", "elapsed", "throughput");
    let cluster = cluster_for(&db, workers);
    let mut q = 1usize;
    while q <= max_queries {
        let gateway = Gateway::new(Arc::clone(&cluster));
        for i in 0..q {
            gateway
                .register(
                    format!(
                        "SELECT COUNT(*) AS n FROM S_Msmt WHERE sensor_id % 16 = {}",
                        i % 16
                    ),
                    1.0,
                )
                .unwrap();
        }
        let start = Instant::now();
        let results = gateway.run_all();
        let elapsed = start.elapsed();
        assert!(results.iter().all(|(_, r)| r.is_ok()));
        // Each query scans its worker's shard ≈ tuples / workers.
        let processed = (q * tuples / workers) as f64;
        println!(
            "{:>8} {:>14?} {:>16}",
            q,
            elapsed,
            format_rate(processed / elapsed.as_secs_f64())
        );
        q *= 4;
    }
    println!("\n(paper claim shapes: near-linear node scaling until physical cores saturate;");
    println!(" >1,000 concurrent tasks sustained; see EXPERIMENTS.md for recorded runs)");
}
