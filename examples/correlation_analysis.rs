//! The Pearson-correlation diagnostic task (paper §3: "calculate the
//! Pearson correlation coefficient between turbine stream data"), three
//! ways: exact SQL `CORR`, exhaustive exact search, and the LSH UDF
//! (experiment E9).
//!
//! ```text
//! cargo run --release --example correlation_analysis [n_sensors]
//! ```

use std::time::Instant;

use optique_lsh::CorrelationIndex;
use optique_relational::Database;
use optique_siemens::{streamgen::sensor_series, StreamConfig};

fn main() {
    let n_sensors: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);

    // A stream with several planted correlated pairs.
    let mut db = Database::new();
    let config = StreamConfig {
        sensor_ids: (0..n_sensors as i64).collect(),
        start_ms: 0,
        duration_ms: 64_000,
        period_ms: 1_000,
        seed: 23,
        ramp_failures: 0,
        correlated_pairs: 4,
        hot_bursts: 0,
    };
    let truth = optique_siemens::streamgen::build_stream(&mut db, &config).unwrap();
    println!("planted correlated pairs: {:?}\n", truth.correlated_pairs);

    // 1. SQL CORR over a small sensor subset (all-pairs in SQL explodes).
    println!("== SQL(+) CORR on the first 12 sensors ==");
    let start = Instant::now();
    let t = optique_relational::exec::query(
        "SELECT a.sensor_id AS s1, b.sensor_id AS s2, CORR(a.value, b.value) AS r \
         FROM S_Msmt a JOIN S_Msmt b ON a.ts = b.ts \
         WHERE a.sensor_id < b.sensor_id AND a.sensor_id < 12 AND b.sensor_id < 12 \
         GROUP BY a.sensor_id, b.sensor_id HAVING CORR(a.value, b.value) >= 0.9",
        &db,
    )
    .unwrap();
    println!("{}  ({:?})\n", t.render(10), start.elapsed());

    // 2. Exhaustive exact Pearson over all sensors.
    let mut index = CorrelationIndex::new(64, 16, 8, 5);
    for s in 0..n_sensors as i64 {
        let series = sensor_series(&db, s).unwrap();
        index.insert(s as u64, &series[..64.min(series.len())]);
    }
    let start = Instant::now();
    let exact = index.exact_pairs_above(0.9);
    let exact_time = start.elapsed();
    println!("== exhaustive exact Pearson over {n_sensors} sensors ==");
    println!("  {} pairs ≥ 0.9 in {exact_time:?}", exact.len());

    // 3. LSH banding: candidates only, then exact verification.
    let start = Instant::now();
    let approx = index.correlated_pairs(0.8);
    let lsh_time = start.elapsed();
    println!("\n== LSH (16 bands × 8 bits) ==");
    println!(
        "  {} candidate pairs verified in {lsh_time:?}",
        approx.len()
    );
    for pair in approx.iter().take(6) {
        println!(
            "  sensors {} & {}: estimate {:+.3}, exact {:+.3}",
            pair.a, pair.b, pair.estimated, pair.exact
        );
    }

    // Recall against the exact baseline.
    let exact_set: std::collections::BTreeSet<(u64, u64)> =
        exact.iter().map(|(a, b, _)| (*a, *b)).collect();
    let found: std::collections::BTreeSet<(u64, u64)> = approx.iter().map(|p| (p.a, p.b)).collect();
    let recalled = exact_set.intersection(&found).count();
    println!(
        "\nrecall {recalled}/{} — speedup ×{:.1}",
        exact_set.len(),
        exact_time.as_secs_f64() / lsh_time.as_secs_f64().max(1e-9)
    );
}
