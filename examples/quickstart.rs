//! Quickstart: deploy Optique over a generated Siemens scenario, register
//! the paper's Figure 1 diagnostic query, replay the stream, read alarms.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use optique::OptiquePlatform;
use optique_siemens::SiemensDeployment;
use optique_starql::FIGURE1;

fn main() {
    // 1. A deployment: static fleet DB + measurement stream + ontology +
    //    mappings, all generated deterministically.
    let deployment = SiemensDeployment::small();
    let start = deployment.stream_config.start_ms;
    let end = start + deployment.stream_config.duration_ms;
    println!(
        "deployment: {} sensors, {} planted ramp failures, stream {}..{} ms",
        deployment.sensor_ids.len(),
        deployment.ground_truth.ramp_failures.len(),
        start,
        end
    );

    // 2. The platform compiles STARQL through enrichment and unfolding.
    let platform = OptiquePlatform::from_siemens(deployment);
    let id = platform
        .register_starql(FIGURE1)
        .expect("figure 1 registers");
    let report = platform.fleet_report(id, FIGURE1).expect("registered");
    println!(
        "one STARQL query ({} chars) replaces a fleet of {} low-level queries ({} chars)",
        report.starql_chars, report.fleet_queries, report.fleet_chars
    );

    // 3. Replay: tick once per second across the recorded stream.
    let mut alarms = 0usize;
    for tick in (start..=end).step_by(1_000) {
        for (_, out) in platform.tick_all(tick).expect("tick") {
            for triple in &out.triples {
                alarms += 1;
                println!("  [{tick} ms] ALARM {triple}");
            }
        }
    }
    println!("total alarms: {alarms}");

    // 4. The monitoring dashboard (paper Figure 3, textual form).
    print!("{}", platform.dashboard().render());
}
